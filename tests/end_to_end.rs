//! End-to-end integration tests spanning every crate: workloads scheduled
//! by each policy on the full simulated stack, checking the paper's
//! qualitative claims on scaled-down configurations.

use hpc_iosched::cluster::ExecSpec;
use hpc_iosched::experiments::{run_experiment, ExperimentConfig, SchedulerKind};
use hpc_iosched::lustre::LustreConfig;
use hpc_iosched::simkit::time::{SimDuration, SimTime};
use hpc_iosched::simkit::units::{gib, gibps};
use hpc_iosched::workloads::{workload_1, JobSubmission, PaperParams, WorkloadBuilder};

/// A scaled-down Workload 1: 2 waves of {10 write×8, 20 sleep(120 s)}.
fn mini_w1() -> Vec<JobSubmission> {
    WorkloadBuilder::new()
        .waves(2, |b| {
            b.batch(
                10,
                "write_x8",
                ExecSpec::write_xn(8, gib(10.0)),
                SimDuration::from_secs(3600),
            )
            .batch(
                20,
                "sleep",
                ExecSpec::sleep(SimDuration::from_secs(120)),
                SimDuration::from_secs(200),
            )
        })
        .build()
}

fn cfg(kind: SchedulerKind, seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper(kind, seed);
    cfg.sched_period = SimDuration::from_secs(10);
    cfg
}

#[test]
fn all_schedulers_complete_mini_workload_1() {
    let w = mini_w1();
    for kind in [
        SchedulerKind::DefaultBackfill,
        SchedulerKind::IoAware {
            limit_bps: gibps(20.0),
        },
        SchedulerKind::IoAware {
            limit_bps: gibps(15.0),
        },
        SchedulerKind::Adaptive {
            limit_bps: gibps(20.0),
            two_group: true,
        },
        SchedulerKind::Adaptive {
            limit_bps: gibps(20.0),
            two_group: false,
        },
    ] {
        let res = run_experiment(&cfg(kind, 11), &w);
        assert_eq!(res.jobs.len(), w.len(), "{kind:?} lost jobs");
        assert!(res.makespan_secs > 0.0);
        // Node allocation never exceeds the cluster.
        assert!(res.nodes_trace.max_value().unwrap() <= 15.0);
    }
}

#[test]
fn adaptive_beats_default_on_write_heavy_waves() {
    // The paper's headline claim, on the mini workload, across seeds:
    // the adaptive scheduler's makespan is below default's.
    let w = mini_w1();
    let mut adaptive_wins = 0;
    for seed in [1u64, 2, 3] {
        let d = run_experiment(&cfg(SchedulerKind::DefaultBackfill, seed), &w);
        let a = run_experiment(
            &cfg(
                SchedulerKind::Adaptive {
                    limit_bps: gibps(20.0),
                    two_group: true,
                },
                seed,
            ),
            &w,
        );
        if a.makespan_secs < d.makespan_secs {
            adaptive_wins += 1;
        }
    }
    assert!(
        adaptive_wins >= 2,
        "adaptive should win on most seeds ({adaptive_wins}/3)"
    );
}

#[test]
fn default_scheduler_is_fifo_for_uniform_single_node_jobs() {
    // Paper §IV: with one-node jobs and no other resources, default
    // backfill dispatches in queue order (no visible backfill).
    let w = mini_w1();
    let res = run_experiment(&cfg(SchedulerKind::DefaultBackfill, 5), &w);
    let mut starts: Vec<(u64, SimTime)> = res.jobs.iter().map(|j| (j.id.0, j.start)).collect();
    starts.sort_by_key(|&(id, _)| id);
    for win in starts.windows(2) {
        assert!(
            win[1].1 >= win[0].1,
            "dispatch order violated queue order: {win:?}"
        );
    }
}

#[test]
fn io_aware_throttles_concurrent_writers() {
    // Pure write queue: the I/O-aware scheduler with a tight limit admits
    // fewer concurrent writers than default (which packs all nodes).
    let w = WorkloadBuilder::new()
        .batch(
            15,
            "write_x8",
            ExecSpec::write_xn(8, gib(10.0)),
            SimDuration::from_secs(3600),
        )
        .build();
    let d = run_experiment(&cfg(SchedulerKind::DefaultBackfill, 3), &w);
    let t = run_experiment(
        &cfg(
            SchedulerKind::IoAware {
                limit_bps: gibps(7.0),
            },
            3,
        ),
        &w,
    );
    // Peak concurrent streams: default = 15 jobs × 8 threads.
    let d_peak = d.streams_trace.max_value().unwrap();
    let t_peak = t.streams_trace.max_value().unwrap();
    assert_eq!(d_peak, 120.0);
    assert!(
        t_peak < 60.0,
        "io-aware(7 GiB/s) should admit ~2 writers at a time, saw {t_peak} streams"
    );
}

#[test]
fn untrained_adaptive_converges_toward_pretrained_behaviour() {
    // Fig. 3(e): without pre-training the adaptive scheduler starts like
    // default and learns from completions. Two waves are not enough to
    // amortise the learning cost (the paper uses eight), so the check is
    // convergence-shaped: with more waves the untrained scheduler must
    // close most of the gap to the pre-trained one.
    let waves = |n: usize| -> Vec<JobSubmission> {
        WorkloadBuilder::new()
            .waves(n, |b| {
                b.batch(
                    10,
                    "write_x8",
                    ExecSpec::write_xn(8, gib(10.0)),
                    SimDuration::from_secs(3600),
                )
                .batch(
                    20,
                    "sleep",
                    ExecSpec::sleep(SimDuration::from_secs(300)),
                    SimDuration::from_secs(400),
                )
            })
            .build()
    };
    let w = waves(4);
    let kind = SchedulerKind::Adaptive {
        limit_bps: gibps(20.0),
        two_group: true,
    };
    let mut c_untrained = cfg(kind, 8);
    c_untrained.pretrained = false;
    let untrained = run_experiment(&c_untrained, &w);
    let pretrained = run_experiment(&cfg(kind, 8), &w);
    let default = run_experiment(&cfg(SchedulerKind::DefaultBackfill, 8), &w);
    // Pre-trained adaptive wins outright; untrained lands between the
    // pre-trained result and a modest margin over default.
    assert!(
        pretrained.makespan_secs < default.makespan_secs,
        "pretrained {} vs default {}",
        pretrained.makespan_secs,
        default.makespan_secs
    );
    assert!(
        untrained.makespan_secs < default.makespan_secs * 1.05,
        "untrained adaptive {} should be within 5% of default {} after 4 waves",
        untrained.makespan_secs,
        default.makespan_secs
    );
    assert!(untrained.makespan_secs >= pretrained.makespan_secs * 0.95);
}

#[test]
fn full_workload_1_composition_survives_the_driver() {
    // Smoke test with the real 720-job Workload 1 on a faster file system
    // (scaled volumes) to keep runtime low: everything completes and the
    // per-name counts match.
    let params = PaperParams {
        bytes_per_thread: gib(2.0),
        sleep_duration: SimDuration::from_secs(60),
        sleep_limit: SimDuration::from_secs(120),
        ..PaperParams::default()
    };
    let w = workload_1(&params);
    let mut c = cfg(
        SchedulerKind::Adaptive {
            limit_bps: gibps(20.0),
            two_group: true,
        },
        2,
    );
    c.fs = LustreConfig::stria().noiseless();
    let res = run_experiment(&c, &w);
    assert_eq!(res.jobs.len(), 720);
    assert_eq!(res.jobs.iter().filter(|j| j.name == "sleep").count(), 480);
    assert!(res
        .jobs
        .iter()
        .all(|j| j.end > j.start || j.name == "sleep"));
}
