//! The per-pass scheduling path must be allocation-free in steady state.
//!
//! This pins the PR's core claim: once the reusable buffers (queue ids,
//! queue refs, running views, outcome) and the policy-owned scratch
//! (profiles, split buffers) have reached working size, a full
//! scheduling round — wait-queue query, running views, book hand-off,
//! backfill pass — performs **zero** heap allocations, for the default,
//! I/O-aware and adaptive policies alike.
//!
//! Methodology: a counting [`GlobalAlloc`] wrapper tallies every
//! `alloc`/`realloc`/`alloc_zeroed`. After warm-up rounds, the test
//! measures several windows of identical rounds and asserts the
//! *minimum* window delta is zero (the minimum shrugs off any stray
//! allocation from the test harness itself).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use iosched_analytics::JobEstimate;
use iosched_cluster::{ClusterSim, ExecSpec, JobCompletion, Phase};
use iosched_core::{AdaptiveConfig, AdaptivePolicy, EstimateBook, IoAwareConfig, IoAwarePolicy};
use iosched_lustre::LustreConfig;
use iosched_simkit::ids::JobId;
use iosched_simkit::rng::SimRng;
use iosched_simkit::time::{SimDuration, SimTime};
use iosched_simkit::units::{gib, gibps};
use iosched_slurm::policy::{NodePolicy, SchedulingPolicy};
use iosched_slurm::{
    backfill_pass_into, BackfillConfig, JobRegistry, PriorityPolicy, RunningView, SchedJob,
    SchedulingOutcome,
};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// 320 jobs: 5 running (11 of 15 nodes busy), 315 pending — a deep
/// queue in the paper's `bf_max_job_test` regime, with mixed widths and
/// limits.
fn job_table() -> Vec<SchedJob> {
    (0..320u64)
        .map(|i| {
            SchedJob::new(
                JobId(i),
                format!("job{}", i % 8),
                1 + (i % 4) as usize,
                SimDuration::from_secs(600 + (i % 7) * 60),
                SimTime::ZERO,
            )
        })
        .collect()
}

/// Run identical scheduling rounds against `policy` and return the
/// minimum allocation delta over several measured windows (after
/// warm-up). `pre`/`post` bracket each round with the book hand-off the
/// driver performs for the I/O-aware policies.
fn steady_state_allocs<P>(
    policy: &mut P,
    pre: impl Fn(&mut P, &mut EstimateBook),
    post: impl Fn(&mut P, &mut EstimateBook),
) -> u64
where
    P: SchedulingPolicy,
{
    let jobs = job_table();
    let mut registry = JobRegistry::new();
    for j in &jobs {
        registry.submit(j.clone());
    }
    for id in 0..5u64 {
        registry.mark_started(JobId(id), SimTime::from_secs(id));
    }
    let now = SimTime::from_secs(30);
    let total_nodes = 15;
    let bf = BackfillConfig::default();

    let mut book = EstimateBook::new();
    for j in &jobs {
        book.insert(
            j.id,
            JobEstimate {
                throughput_bps: gibps(0.1) * (1 + j.id.0 % 5) as f64,
                runtime: SimDuration::from_secs(120 + (j.id.0 % 9) * 30),
            },
        );
    }
    book.measured_total_bps = gibps(4.0);

    let mut queue_ids: Vec<JobId> = Vec::new();
    let mut queue_refs: Vec<&SchedJob> = Vec::new();
    let mut running_pairs: Vec<(JobId, SimTime)> = Vec::new();
    let mut running_views: Vec<RunningView<'_>> = Vec::new();
    let mut outcome = SchedulingOutcome::default();

    let entry = |id: JobId| &jobs[id.0 as usize];
    let mut round = |policy: &mut P, book: &mut EstimateBook| {
        registry.wait_queue_ids_into(now, PriorityPolicy::Fifo, &mut queue_ids);
        queue_ids.truncate(500);
        queue_refs.clear();
        queue_refs.extend(queue_ids.iter().map(|&id| entry(id)));
        registry.running_ids_into(&mut running_pairs);
        running_views.clear();
        running_views.extend(running_pairs.iter().map(|&(id, started)| RunningView {
            job: entry(id),
            started,
        }));
        pre(policy, book);
        backfill_pass_into(
            policy,
            &running_views,
            &queue_refs,
            now,
            total_nodes,
            &bf,
            &mut outcome,
        );
        post(policy, book);
        assert!(!outcome.start_now.is_empty(), "rounds must do real work");
    };

    // Warm-up: let every reusable buffer reach its working capacity.
    for _ in 0..5 {
        round(policy, &mut book);
    }

    let mut best = u64::MAX;
    for _ in 0..3 {
        let before = allocations();
        for _ in 0..10 {
            round(policy, &mut book);
        }
        best = best.min(allocations() - before);
    }
    best
}

#[test]
fn scheduler_pass_is_allocation_free_in_steady_state() {
    let noop = |_: &mut _, _: &mut EstimateBook| {};

    let mut node = NodePolicy::default();
    let d = steady_state_allocs(&mut node, noop, noop);
    assert_eq!(d, 0, "default backfill pass allocated {d} times per window");

    let mut io = IoAwarePolicy::new(IoAwareConfig {
        limit_bps: gibps(20.0),
    });
    let d = steady_state_allocs(
        &mut io,
        |p: &mut IoAwarePolicy, book| p.begin_round(std::mem::take(book)),
        |p, book| *book = p.take_book(),
    );
    assert_eq!(d, 0, "io-aware pass allocated {d} times per window");

    let mut adaptive = AdaptivePolicy::new(AdaptiveConfig::paper(gibps(20.0)));
    let d = steady_state_allocs(
        &mut adaptive,
        |p: &mut AdaptivePolicy, book| p.begin_round(std::mem::take(book)),
        |p, book| *book = p.take_book(),
    );
    assert_eq!(d, 0, "adaptive pass allocated {d} times per window");
}

/// The event-calendar advance/harvest path must also be allocation-free
/// in steady state: `next_event_time` (O(1) calendar peek plus its debug
/// oracle scan), `advance_to_into` (settle loop, buffered stream
/// harvests, calendar drain), phase transitions (cursored phase lists,
/// warm-started rate solves with the full-rebuild debug oracle) — zero
/// heap allocations per event once every buffer reaches working size.
#[test]
fn cluster_advance_harvest_is_allocation_free_in_steady_state() {
    let mut c = ClusterSim::new(15, LustreConfig::stria().noiseless(), SimRng::from_seed(11));
    // Ten jobs alternating compute and write for hundreds of phases:
    // events keep firing throughout the windows, with no job start or
    // completion inside them.
    for j in 0..10u64 {
        let mut phases = Vec::with_capacity(400);
        for k in 0..200u64 {
            phases.push(Phase::Compute(SimDuration::from_secs(3 + (j + k) % 5)));
            phases.push(Phase::Write {
                threads_per_node: 2,
                bytes_per_thread: gib(0.2),
            });
        }
        c.start_job(SimTime::ZERO, JobId(j), &ExecSpec { nodes: 1, phases })
            .unwrap();
    }

    let mut done: Vec<JobCompletion> = Vec::new();
    let step = |c: &mut ClusterSim, done: &mut Vec<JobCompletion>| {
        let t = c.next_event_time().expect("events remain");
        c.advance_to_into(t, done);
        assert!(done.is_empty(), "no job may finish inside a window");
    };

    // Warm-up: slabs, scratch buffers, solver arrays and the calendar
    // reach their working capacities.
    for _ in 0..200 {
        step(&mut c, &mut done);
    }

    let mut best = u64::MAX;
    for _ in 0..3 {
        let before = allocations();
        for _ in 0..100 {
            step(&mut c, &mut done);
        }
        best = best.min(allocations() - before);
    }
    assert_eq!(
        best, 0,
        "cluster advance/harvest allocated {best} times per window"
    );
}
